//! Instructions, atomic orderings and terminators.

use crate::func::{BlockId, InstId};
use crate::module::FuncId;
use crate::types::Type;
use crate::value::Value;
use std::fmt;

/// C11-style atomic memory orderings, as they appear on LLVM memory
/// instructions.
///
/// `NotAtomic` marks a plain access. The AtoMig transformation (§3.2, §3.3)
/// upgrades detected synchronization accesses to [`Ordering::SeqCst`], which
/// an Arm backend lowers to implicit-barrier instructions (`LDAR`/`STLR`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ordering {
    /// A plain, non-atomic access.
    NotAtomic,
    /// `memory_order_relaxed`.
    Relaxed,
    /// `memory_order_acquire` (loads / RMW).
    Acquire,
    /// `memory_order_release` (stores / RMW).
    Release,
    /// `memory_order_acq_rel` (RMW).
    AcqRel,
    /// `memory_order_seq_cst`.
    SeqCst,
}

impl Ordering {
    /// Returns `true` if the access is atomic at all.
    pub fn is_atomic(&self) -> bool {
        !matches!(self, Ordering::NotAtomic)
    }

    /// Returns `true` if the ordering has acquire semantics on loads.
    pub fn has_acquire(&self) -> bool {
        matches!(
            self,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    /// Returns `true` if the ordering has release semantics on stores.
    pub fn has_release(&self) -> bool {
        matches!(
            self,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    /// Parses the textual suffix used by the printer (`seq_cst`, `acq`, ...).
    pub fn from_keyword(s: &str) -> Option<Ordering> {
        Some(match s {
            "na" | "not_atomic" => Ordering::NotAtomic,
            "rlx" | "relaxed" => Ordering::Relaxed,
            "acq" | "acquire" => Ordering::Acquire,
            "rel" | "release" => Ordering::Release,
            "acq_rel" => Ordering::AcqRel,
            "sc" | "seq_cst" => Ordering::SeqCst,
            _ => return None,
        })
    }

    /// The textual keyword used by the printer.
    pub fn keyword(&self) -> &'static str {
        match self {
            Ordering::NotAtomic => "na",
            Ordering::Relaxed => "rlx",
            Ordering::Acquire => "acq",
            Ordering::Release => "rel",
            Ordering::AcqRel => "acq_rel",
            Ordering::SeqCst => "seq_cst",
        }
    }
}

impl fmt::Display for Ordering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Binary integer operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (traps on zero in the interpreter).
    Div,
    /// Signed remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
}

impl BinOp {
    /// Textual mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        }
    }

    /// Parses a mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<BinOp> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "div" => BinOp::Div,
            "rem" => BinOp::Rem,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "shr" => BinOp::Shr,
            _ => return None,
        })
    }
}

/// Comparison predicates (signed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpPred {
    /// Textual mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Lt => "lt",
            CmpPred::Le => "le",
            CmpPred::Gt => "gt",
            CmpPred::Ge => "ge",
        }
    }

    /// Parses a mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<CmpPred> {
        Some(match s {
            "eq" => CmpPred::Eq,
            "ne" => CmpPred::Ne,
            "lt" => CmpPred::Lt,
            "le" => CmpPred::Le,
            "gt" => CmpPred::Gt,
            "ge" => CmpPred::Ge,
            _ => return None,
        })
    }

    /// Evaluates the predicate on two signed integers.
    pub fn eval(&self, l: i64, r: i64) -> bool {
        match self {
            CmpPred::Eq => l == r,
            CmpPred::Ne => l != r,
            CmpPred::Lt => l < r,
            CmpPred::Le => l <= r,
            CmpPred::Gt => l > r,
            CmpPred::Ge => l >= r,
        }
    }
}

/// Atomic read-modify-write operations (`atomicrmw` in LLVM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmwOp {
    /// Fetch-and-add.
    Add,
    /// Fetch-and-sub.
    Sub,
    /// Atomic exchange.
    Xchg,
    /// Fetch-and-and.
    And,
    /// Fetch-and-or.
    Or,
    /// Fetch-and-xor.
    Xor,
}

impl RmwOp {
    /// Textual mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            RmwOp::Add => "add",
            RmwOp::Sub => "sub",
            RmwOp::Xchg => "xchg",
            RmwOp::And => "and",
            RmwOp::Or => "or",
            RmwOp::Xor => "xor",
        }
    }

    /// Parses a mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<RmwOp> {
        Some(match s {
            "add" => RmwOp::Add,
            "sub" => RmwOp::Sub,
            "xchg" => RmwOp::Xchg,
            "and" => RmwOp::And,
            "or" => RmwOp::Or,
            "xor" => RmwOp::Xor,
            _ => return None,
        })
    }

    /// Applies the operation, returning the new memory value.
    pub fn apply(&self, old: i64, operand: i64) -> i64 {
        match self {
            RmwOp::Add => old.wrapping_add(operand),
            RmwOp::Sub => old.wrapping_sub(operand),
            RmwOp::Xchg => operand,
            RmwOp::And => old & operand,
            RmwOp::Or => old | operand,
            RmwOp::Xor => old ^ operand,
        }
    }
}

/// Runtime intrinsics understood by the model checker and the interpreter.
///
/// These model the pthread / libc surface the paper's benchmarks use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `spawn(@fn, arg) -> tid` — start a thread running `@fn(arg)`.
    Spawn,
    /// `join(tid)` — wait for the thread to finish.
    Join,
    /// `assert(cond)` — report a violation if `cond == 0`.
    Assert,
    /// `assume(cond)` — prune executions where `cond == 0` (model checker).
    Assume,
    /// `barrier_wait(n)` — pthread-style barrier across `n` threads
    /// (Phoenix-style bulk-synchronous phases; not a memory fence).
    BarrierWait,
    /// `malloc(slots) -> ptr` — bump allocation in the flat heap.
    Malloc,
    /// `free(ptr)` — no-op in the flat heap model.
    Free,
    /// `pause()` — `cpu_relax` hint; a no-op with a tiny cost.
    Pause,
    /// A compiler-only barrier (`asm("" ::: "memory")`): no hardware
    /// effect, but kept in the IR because §6 of the paper proposes such
    /// sites as additional entry points for synchronization detection.
    CompilerBarrier,
    /// `nondet() -> i64` — an arbitrary value (model checker input).
    Nondet,
    /// `print(v)` — debug output from the interpreter.
    Print,
}

impl Builtin {
    /// Name as written in textual MIR (`call i64 @spawn(...)`).
    pub fn name(&self) -> &'static str {
        match self {
            Builtin::Spawn => "spawn",
            Builtin::Join => "join",
            Builtin::Assert => "assert",
            Builtin::Assume => "assume",
            Builtin::BarrierWait => "barrier_wait",
            Builtin::Malloc => "malloc",
            Builtin::Free => "free",
            Builtin::Pause => "pause",
            Builtin::CompilerBarrier => "compiler_barrier",
            Builtin::Nondet => "nondet",
            Builtin::Print => "print",
        }
    }

    /// Parses a builtin name.
    pub fn from_name(s: &str) -> Option<Builtin> {
        Some(match s {
            "spawn" => Builtin::Spawn,
            "join" => Builtin::Join,
            "assert" => Builtin::Assert,
            "assume" => Builtin::Assume,
            "barrier_wait" => Builtin::BarrierWait,
            "malloc" => Builtin::Malloc,
            "free" => Builtin::Free,
            "pause" => Builtin::Pause,
            "compiler_barrier" => Builtin::CompilerBarrier,
            "nondet" => Builtin::Nondet,
            "print" => Builtin::Print,
            _ => return None,
        })
    }
}

/// The target of a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Callee {
    /// A function defined in the module.
    Func(FuncId),
    /// A runtime intrinsic.
    Builtin(Builtin),
}

/// A single GEP index: either a compile-time constant (struct fields must
/// be constant) or a dynamic value (array subscripts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GepIndex {
    /// A constant index.
    Const(i64),
    /// A dynamically computed index.
    Dyn(Value),
}

impl GepIndex {
    /// The constant payload, if statically known.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            GepIndex::Const(c) => Some(*c),
            GepIndex::Dyn(v) => v.as_const(),
        }
    }

    /// The dynamic value, if not a constant.
    pub fn as_value(&self) -> Option<Value> {
        match self {
            GepIndex::Dyn(v) => Some(*v),
            GepIndex::Const(_) => None,
        }
    }
}

/// The operation performed by an instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum InstKind {
    /// Reserve a stack slot of `ty`; the result is its address.
    Alloca {
        /// Type of the slot.
        ty: Type,
        /// Source-level variable name (debugging / reports).
        name: String,
    },
    /// Load a scalar of type `ty` from `ptr`.
    Load {
        /// Address operand.
        ptr: Value,
        /// Loaded type.
        ty: Type,
        /// Atomic ordering (`NotAtomic` for plain loads).
        ord: Ordering,
        /// C `volatile` qualifier on the access.
        volatile: bool,
    },
    /// Store scalar `val` of type `ty` to `ptr`.
    Store {
        /// Address operand.
        ptr: Value,
        /// Stored value.
        val: Value,
        /// Stored type.
        ty: Type,
        /// Atomic ordering (`NotAtomic` for plain stores).
        ord: Ordering,
        /// C `volatile` qualifier on the access.
        volatile: bool,
    },
    /// Atomic compare-exchange. The result is the *old* value read from
    /// memory; the exchange succeeded iff `old == expected`.
    Cmpxchg {
        /// Address operand.
        ptr: Value,
        /// Expected old value.
        expected: Value,
        /// Replacement value.
        new: Value,
        /// Accessed type.
        ty: Type,
        /// Ordering on success (failure ordering is derived).
        ord: Ordering,
    },
    /// Atomic read-modify-write; the result is the old value.
    Rmw {
        /// The combining operation.
        op: RmwOp,
        /// Address operand.
        ptr: Value,
        /// Operand value.
        val: Value,
        /// Accessed type.
        ty: Type,
        /// Atomic ordering.
        ord: Ordering,
    },
    /// A stand-alone explicit memory barrier (`FENCE SC` in the paper's
    /// figures; `DMB` on Arm).
    Fence {
        /// Fence ordering (the transformation only emits `SeqCst`).
        ord: Ordering,
    },
    /// Typed address arithmetic: `&base[i0].f1[i2]...`, LLVM's
    /// `getelementptr`. `base_ty` is the pointee type of `base`.
    Gep {
        /// Base pointer.
        base: Value,
        /// Pointee type of `base` (what the indices navigate).
        base_ty: Type,
        /// Index path. The first index scales by whole `base_ty` elements
        /// (as in LLVM); subsequent indices navigate into the type.
        indices: Vec<GepIndex>,
    },
    /// Binary integer arithmetic.
    Bin {
        /// Operation.
        op: BinOp,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Integer comparison producing an `i1`.
    Cmp {
        /// Predicate.
        pred: CmpPred,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Width or representation cast (zext/trunc/ptrtoint/inttoptr folded
    /// into one instruction for simplicity).
    Cast {
        /// Operand.
        value: Value,
        /// Target type.
        to: Type,
    },
    /// Call a function or builtin.
    Call {
        /// Call target.
        callee: Callee,
        /// Argument values.
        args: Vec<Value>,
        /// Return type (`Void` for none).
        ret_ty: Type,
    },
}

impl InstKind {
    /// Returns `true` for instructions that access memory (load, store,
    /// cmpxchg, rmw). Fences are ordering-only and excluded.
    pub fn is_memory_access(&self) -> bool {
        matches!(
            self,
            InstKind::Load { .. }
                | InstKind::Store { .. }
                | InstKind::Cmpxchg { .. }
                | InstKind::Rmw { .. }
        )
    }

    /// Returns `true` for stores, cmpxchg and RMW (anything that can write).
    pub fn may_write(&self) -> bool {
        matches!(
            self,
            InstKind::Store { .. } | InstKind::Cmpxchg { .. } | InstKind::Rmw { .. }
        )
    }

    /// Returns `true` for loads, cmpxchg and RMW (anything that reads).
    pub fn may_read(&self) -> bool {
        matches!(
            self,
            InstKind::Load { .. } | InstKind::Cmpxchg { .. } | InstKind::Rmw { .. }
        )
    }

    /// The address operand of a memory access, if any.
    pub fn address(&self) -> Option<Value> {
        match self {
            InstKind::Load { ptr, .. }
            | InstKind::Store { ptr, .. }
            | InstKind::Cmpxchg { ptr, .. }
            | InstKind::Rmw { ptr, .. } => Some(*ptr),
            _ => None,
        }
    }

    /// The atomic ordering of a memory access or fence, if any.
    pub fn ordering(&self) -> Option<Ordering> {
        match self {
            InstKind::Load { ord, .. }
            | InstKind::Store { ord, .. }
            | InstKind::Cmpxchg { ord, .. }
            | InstKind::Rmw { ord, .. }
            | InstKind::Fence { ord } => Some(*ord),
            _ => None,
        }
    }

    /// Upgrades the ordering of a memory access (no-op for others).
    /// Never downgrades: the new ordering is the max of old and `new_ord`.
    pub fn upgrade_ordering(&mut self, new_ord: Ordering) {
        match self {
            InstKind::Load { ord, .. }
            | InstKind::Store { ord, .. }
            | InstKind::Cmpxchg { ord, .. }
            | InstKind::Rmw { ord, .. }
            | InstKind::Fence { ord }
                if new_ord > *ord =>
            {
                *ord = new_ord;
            }
            _ => {}
        }
    }

    /// Whether the instruction produces a result value.
    pub fn has_result(&self) -> bool {
        match self {
            InstKind::Store { .. } | InstKind::Fence { .. } => false,
            InstKind::Call { ret_ty, .. } => *ret_ty != Type::Void,
            _ => true,
        }
    }

    /// All value operands of the instruction, in a fixed order.
    pub fn operands(&self) -> Vec<Value> {
        match self {
            InstKind::Alloca { .. } | InstKind::Fence { .. } => vec![],
            InstKind::Load { ptr, .. } => vec![*ptr],
            InstKind::Store { ptr, val, .. } => vec![*ptr, *val],
            InstKind::Cmpxchg {
                ptr, expected, new, ..
            } => vec![*ptr, *expected, *new],
            InstKind::Rmw { ptr, val, .. } => vec![*ptr, *val],
            InstKind::Gep { base, indices, .. } => {
                let mut v = vec![*base];
                v.extend(indices.iter().filter_map(GepIndex::as_value));
                v
            }
            InstKind::Bin { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
                vec![*lhs, *rhs]
            }
            InstKind::Cast { value, .. } => vec![*value],
            InstKind::Call { args, .. } => args.clone(),
        }
    }
}

/// A numbered instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inst {
    /// Function-unique id; also the SSA name of the result (`%tN`).
    pub id: InstId,
    /// What the instruction does.
    pub kind: InstKind,
    /// Source line this instruction was lowered from (1-based MiniC line;
    /// `0` = unknown/synthesized). Printed as a ` !N` suffix and carried
    /// through inlining and transformation so diagnostics can point at
    /// source.
    pub span: u32,
}

impl Inst {
    /// An instruction with no source span.
    pub fn new(id: InstId, kind: InstKind) -> Inst {
        Inst { id, kind, span: 0 }
    }

    /// An instruction annotated with a source line.
    pub fn with_span(id: InstId, kind: InstKind, span: u32) -> Inst {
        Inst { id, kind, span }
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional branch.
    Br(BlockId),
    /// Conditional branch on an `i1` value.
    CondBr {
        /// Branch condition.
        cond: Value,
        /// Successor when `cond != 0`.
        then_bb: BlockId,
        /// Successor when `cond == 0`.
        else_bb: BlockId,
    },
    /// Return, optionally with a value.
    Ret(Option<Value>),
    /// Unreachable control flow (e.g. after `assume(false)`).
    Unreachable,
}

impl Terminator {
    /// Successor blocks in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br(b) => vec![*b],
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Ret(_) | Terminator::Unreachable => vec![],
        }
    }

    /// Value operands of the terminator (condition / return value).
    pub fn operands(&self) -> Vec<Value> {
        match self {
            Terminator::CondBr { cond, .. } => vec![*cond],
            Terminator::Ret(Some(v)) => vec![*v],
            _ => vec![],
        }
    }

    /// Rewrites successor block ids through `map` (used by inlining).
    pub fn remap_blocks(&mut self, map: &dyn Fn(BlockId) -> BlockId) {
        match self {
            Terminator::Br(b) => *b = map(*b),
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => {
                *then_bb = map(*then_bb);
                *else_bb = map(*else_bb);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_lattice() {
        assert!(Ordering::SeqCst > Ordering::Acquire);
        assert!(Ordering::Relaxed > Ordering::NotAtomic);
        assert!(Ordering::SeqCst.has_acquire());
        assert!(Ordering::SeqCst.has_release());
        assert!(Ordering::Acquire.has_acquire());
        assert!(!Ordering::Acquire.has_release());
        assert!(!Ordering::NotAtomic.is_atomic());
    }

    #[test]
    fn ordering_keywords_roundtrip() {
        for ord in [
            Ordering::NotAtomic,
            Ordering::Relaxed,
            Ordering::Acquire,
            Ordering::Release,
            Ordering::AcqRel,
            Ordering::SeqCst,
        ] {
            assert_eq!(Ordering::from_keyword(ord.keyword()), Some(ord));
        }
        assert_eq!(Ordering::from_keyword("bogus"), None);
    }

    #[test]
    fn upgrade_never_downgrades() {
        let mut k = InstKind::Load {
            ptr: Value::Param(0),
            ty: Type::I32,
            ord: Ordering::SeqCst,
            volatile: false,
        };
        k.upgrade_ordering(Ordering::Relaxed);
        assert_eq!(k.ordering(), Some(Ordering::SeqCst));
        k.upgrade_ordering(Ordering::SeqCst);
        assert_eq!(k.ordering(), Some(Ordering::SeqCst));
    }

    #[test]
    fn upgrade_plain_to_sc() {
        let mut k = InstKind::Store {
            ptr: Value::Param(0),
            val: Value::Const(1),
            ty: Type::I32,
            ord: Ordering::NotAtomic,
            volatile: false,
        };
        k.upgrade_ordering(Ordering::SeqCst);
        assert_eq!(k.ordering(), Some(Ordering::SeqCst));
    }

    #[test]
    fn memory_classification() {
        let load = InstKind::Load {
            ptr: Value::Param(0),
            ty: Type::I32,
            ord: Ordering::NotAtomic,
            volatile: false,
        };
        assert!(load.is_memory_access());
        assert!(load.may_read());
        assert!(!load.may_write());
        let fence = InstKind::Fence {
            ord: Ordering::SeqCst,
        };
        assert!(!fence.is_memory_access());
        let rmw = InstKind::Rmw {
            op: RmwOp::Add,
            ptr: Value::Param(0),
            val: Value::Const(1),
            ty: Type::I64,
            ord: Ordering::SeqCst,
        };
        assert!(rmw.may_read() && rmw.may_write());
    }

    #[test]
    fn rmw_semantics() {
        assert_eq!(RmwOp::Add.apply(5, 3), 8);
        assert_eq!(RmwOp::Xchg.apply(5, 3), 3);
        assert_eq!(RmwOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(RmwOp::Sub.apply(i64::MIN, 1), i64::MAX);
    }

    #[test]
    fn cmp_eval() {
        assert!(CmpPred::Lt.eval(-1, 0));
        assert!(CmpPred::Ge.eval(3, 3));
        assert!(!CmpPred::Ne.eval(7, 7));
    }

    #[test]
    fn operand_collection() {
        let gep = InstKind::Gep {
            base: Value::Param(0),
            base_ty: Type::I32,
            indices: vec![GepIndex::Const(0), GepIndex::Dyn(Value::Inst(InstId(4)))],
        };
        assert_eq!(
            gep.operands(),
            vec![Value::Param(0), Value::Inst(InstId(4))]
        );
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::CondBr {
            cond: Value::Const(1),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(Terminator::Ret(None).successors(), vec![]);
    }

    #[test]
    fn builtin_names_roundtrip() {
        for b in [
            Builtin::Spawn,
            Builtin::Join,
            Builtin::Assert,
            Builtin::Assume,
            Builtin::BarrierWait,
            Builtin::Malloc,
            Builtin::Free,
            Builtin::Pause,
            Builtin::CompilerBarrier,
            Builtin::Nondet,
            Builtin::Print,
        ] {
            assert_eq!(Builtin::from_name(b.name()), Some(b));
        }
    }
}
