//! A parser for the textual MIR format, mainly used to write test programs
//! and litmus tests by hand.
//!
//! The grammar is line-oriented LLVM-ish assembly; see the crate-level docs
//! for an example. `;` starts a comment.

use crate::func::{Block, BlockId, Function, InstId};
use crate::inst::{
    BinOp, Builtin, Callee, CmpPred, GepIndex, Inst, InstKind, Ordering, RmwOp, Terminator,
};
use crate::module::{FuncId, GlobalDef, GlobalId, Module, StructDef, StructId};
use crate::types::Type;
use crate::value::Value;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An error produced while parsing textual MIR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    Global(String),  // @name
    Percent(String), // %name
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Eq,
    Bang,
}

#[derive(Debug)]
struct Lexer {
    toks: Vec<(Tok, u32)>,
    pos: usize,
}

fn lex(src: &str) -> Result<Vec<(Tok, u32)>, ParseError> {
    let mut toks = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        let line_num = lineno as u32 + 1;
        let line = match line.find(';') {
            Some(i) => &line[..i],
            None => line,
        };
        let mut chars = line.char_indices().peekable();
        while let Some(&(i, c)) = chars.peek() {
            match c {
                ' ' | '\t' | '\r' => {
                    chars.next();
                }
                '{' => {
                    toks.push((Tok::LBrace, line_num));
                    chars.next();
                }
                '}' => {
                    toks.push((Tok::RBrace, line_num));
                    chars.next();
                }
                '(' => {
                    toks.push((Tok::LParen, line_num));
                    chars.next();
                }
                ')' => {
                    toks.push((Tok::RParen, line_num));
                    chars.next();
                }
                '[' => {
                    toks.push((Tok::LBracket, line_num));
                    chars.next();
                }
                ']' => {
                    toks.push((Tok::RBracket, line_num));
                    chars.next();
                }
                ',' => {
                    toks.push((Tok::Comma, line_num));
                    chars.next();
                }
                ':' => {
                    toks.push((Tok::Colon, line_num));
                    chars.next();
                }
                '=' => {
                    toks.push((Tok::Eq, line_num));
                    chars.next();
                }
                '!' => {
                    toks.push((Tok::Bang, line_num));
                    chars.next();
                }
                '"' => {
                    chars.next();
                    let start = i + 1;
                    let mut end = start;
                    for (j, c2) in chars.by_ref() {
                        if c2 == '"' {
                            end = j;
                            break;
                        }
                    }
                    toks.push((Tok::Str(line[start..end].to_string()), line_num));
                }
                '@' | '%' => {
                    chars.next();
                    let start = i + 1;
                    let mut end = line.len();
                    while let Some(&(j, c2)) = chars.peek() {
                        if c2.is_alphanumeric() || c2 == '_' || c2 == '.' {
                            chars.next();
                        } else {
                            end = j;
                            break;
                        }
                        end = j + c2.len_utf8();
                    }
                    let name = line[start..end].to_string();
                    if c == '@' {
                        toks.push((Tok::Global(name), line_num));
                    } else {
                        toks.push((Tok::Percent(name), line_num));
                    }
                }
                '-' | '0'..='9' => {
                    let start = i;
                    chars.next();
                    let mut end = line.len();
                    while let Some(&(j, c2)) = chars.peek() {
                        if c2.is_ascii_digit() {
                            chars.next();
                        } else {
                            end = j;
                            break;
                        }
                        end = j + 1;
                    }
                    let text = &line[start..end];
                    let v = text.parse::<i64>().map_err(|_| ParseError {
                        msg: format!("bad integer `{text}`"),
                        line: line_num,
                    })?;
                    toks.push((Tok::Int(v), line_num));
                }
                _ if c.is_alphabetic() || c == '_' => {
                    let start = i;
                    chars.next();
                    let mut end = line.len();
                    while let Some(&(j, c2)) = chars.peek() {
                        if c2.is_alphanumeric() || c2 == '_' {
                            chars.next();
                        } else {
                            end = j;
                            break;
                        }
                        end = j + c2.len_utf8();
                    }
                    toks.push((Tok::Ident(line[start..end].to_string()), line_num));
                }
                _ => {
                    return Err(ParseError {
                        msg: format!("unexpected character `{c}`"),
                        line: line_num,
                    })
                }
            }
        }
    }
    Ok(toks)
}

impl Lexer {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|(t, _)| t)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            line: self.line(),
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), ParseError> {
        let line = self.line();
        match self.next() {
            Some(got) if got == t => Ok(()),
            got => Err(ParseError {
                msg: format!("expected {t:?}, got {got:?}"),
                line,
            }),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            got => Err(ParseError {
                msg: format!("expected identifier, got {got:?}"),
                line,
            }),
        }
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }
}

struct Names {
    structs: HashMap<String, StructId>,
    globals: HashMap<String, GlobalId>,
    funcs: HashMap<String, FuncId>,
}

/// Parses a textual module.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line on malformed input or
/// unresolved names.
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let toks = lex(src)?;

    // Pre-pass: collect declared names so forward references resolve.
    let mut names = Names {
        structs: HashMap::new(),
        globals: HashMap::new(),
        funcs: HashMap::new(),
    };
    {
        let mut i = 0;
        while i < toks.len() {
            match &toks[i].0 {
                Tok::Ident(kw) if kw == "struct" => {
                    if let Some((Tok::Percent(n), _)) = toks.get(i + 1) {
                        let id = StructId(names.structs.len() as u32);
                        names.structs.insert(n.clone(), id);
                    }
                }
                Tok::Ident(kw) if kw == "global" => {
                    if let Some((Tok::Global(n), _)) = toks.get(i + 1) {
                        let id = GlobalId(names.globals.len() as u32);
                        names.globals.insert(n.clone(), id);
                    }
                }
                Tok::Ident(kw) if kw == "fn" => {
                    if let Some((Tok::Global(n), _)) = toks.get(i + 1) {
                        let id = FuncId(names.funcs.len() as u32);
                        names.funcs.insert(n.clone(), id);
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    let mut lx = Lexer { toks, pos: 0 };
    let mut m = Module::new("module");

    if lx.eat_ident("module") {
        if let Some(Tok::Str(s)) = lx.peek() {
            m.name = s.clone();
            lx.next();
        }
    }

    while lx.peek().is_some() {
        if lx.eat_ident("struct") {
            let name = match lx.next() {
                Some(Tok::Percent(n)) => n,
                got => return Err(lx.err(format!("expected struct name, got {got:?}"))),
            };
            lx.expect(Tok::LBrace)?;
            let mut fields = Vec::new();
            if !lx.eat(&Tok::RBrace) {
                loop {
                    fields.push(parse_type(&mut lx, &names)?);
                    if lx.eat(&Tok::RBrace) {
                        break;
                    }
                    lx.expect(Tok::Comma)?;
                }
            }
            m.add_struct(StructDef { name, fields });
        } else if lx.eat_ident("global") {
            let name = match lx.next() {
                Some(Tok::Global(n)) => n,
                got => return Err(lx.err(format!("expected global name, got {got:?}"))),
            };
            lx.expect(Tok::Colon)?;
            let ty = parse_type(&mut lx, &names)?;
            lx.expect(Tok::Eq)?;
            let init = parse_init(&mut lx)?;
            m.add_global(GlobalDef { name, ty, init });
        } else if lx.eat_ident("fn") {
            let f = parse_function(&mut lx, &names)?;
            m.add_func(f);
        } else {
            return Err(lx.err(format!("expected top-level item, got {:?}", lx.peek())));
        }
    }

    // Normalize global initializers to their slot counts.
    let sizes = m.struct_slot_sizes();
    for g in &mut m.globals {
        let n = g.ty.slot_count(&sizes) as usize;
        g.init.resize(n.max(1), 0);
    }
    Ok(m)
}

fn parse_init(lx: &mut Lexer) -> Result<Vec<i64>, ParseError> {
    if lx.eat(&Tok::LBracket) {
        let mut vals = Vec::new();
        if !lx.eat(&Tok::RBracket) {
            loop {
                match lx.next() {
                    Some(Tok::Int(v)) => vals.push(v),
                    got => return Err(lx.err(format!("expected integer, got {got:?}"))),
                }
                if lx.eat(&Tok::RBracket) {
                    break;
                }
                lx.expect(Tok::Comma)?;
            }
        }
        Ok(vals)
    } else {
        match lx.next() {
            Some(Tok::Int(v)) => Ok(vec![v]),
            got => Err(lx.err(format!("expected initializer, got {got:?}"))),
        }
    }
}

fn parse_type(lx: &mut Lexer, names: &Names) -> Result<Type, ParseError> {
    match lx.next() {
        Some(Tok::Ident(s)) => match s.as_str() {
            "void" => Ok(Type::Void),
            "i1" => Ok(Type::I1),
            "i8" => Ok(Type::I8),
            "i16" => Ok(Type::I16),
            "i32" => Ok(Type::I32),
            "i64" => Ok(Type::I64),
            "ptr" => Ok(Type::ptr_to(parse_type(lx, names)?)),
            other => Err(lx.err(format!("unknown type `{other}`"))),
        },
        Some(Tok::Percent(n)) => names
            .structs
            .get(&n)
            .map(|sid| Type::Struct(*sid))
            .ok_or_else(|| lx.err(format!("unknown struct `%{n}`"))),
        Some(Tok::LBracket) => {
            let n = match lx.next() {
                Some(Tok::Int(v)) if v >= 0 => v as u32,
                got => return Err(lx.err(format!("expected array length, got {got:?}"))),
            };
            let x = lx.expect_ident()?;
            if x != "x" {
                return Err(lx.err("expected `x` in array type"));
            }
            let elem = parse_type(lx, names)?;
            lx.expect(Tok::RBracket)?;
            Ok(Type::array_of(elem, n))
        }
        got => Err(lx.err(format!("expected type, got {got:?}"))),
    }
}

struct FnCtx {
    params: HashMap<String, u32>,
    results: HashMap<String, InstId>,
}

fn parse_function(lx: &mut Lexer, names: &Names) -> Result<Function, ParseError> {
    let name = match lx.next() {
        Some(Tok::Global(n)) => n,
        got => return Err(lx.err(format!("expected function name, got {got:?}"))),
    };
    lx.expect(Tok::LParen)?;
    let mut params = Vec::new();
    if !lx.eat(&Tok::RParen) {
        loop {
            let pname = match lx.next() {
                Some(Tok::Percent(n)) => n,
                got => return Err(lx.err(format!("expected param name, got {got:?}"))),
            };
            lx.expect(Tok::Colon)?;
            let ty = parse_type(lx, names)?;
            params.push((pname, ty));
            if lx.eat(&Tok::RParen) {
                break;
            }
            lx.expect(Tok::Comma)?;
        }
    }
    lx.expect(Tok::Colon)?;
    let ret = parse_type(lx, names)?;
    lx.expect(Tok::LBrace)?;

    let mut ctx = FnCtx {
        params: params
            .iter()
            .enumerate()
            .map(|(i, (n, _))| (n.clone(), i as u32))
            .collect(),
        results: HashMap::new(),
    };

    let mut f = Function::new(name, params, ret);
    f.blocks.clear();

    // Symbolic blocks: (label, insts, symbolic terminator).
    enum SymTerm {
        Br(String),
        CondBr(Value, String, String),
        Ret(Option<Value>),
        Unreachable,
    }
    let mut blocks: Vec<(String, Vec<Inst>, SymTerm)> = Vec::new();
    let mut cur_label: Option<String> = None;
    let mut cur_insts: Vec<Inst> = Vec::new();

    loop {
        if lx.eat(&Tok::RBrace) {
            if cur_label.is_some() {
                return Err(lx.err("block missing terminator"));
            }
            break;
        }
        // A label?
        if let (Some(Tok::Ident(_)), Some(Tok::Colon)) = (lx.peek(), lx.peek2()) {
            if cur_label.is_some() {
                return Err(lx.err("previous block missing terminator"));
            }
            let label = lx.expect_ident()?;
            lx.expect(Tok::Colon)?;
            cur_label = Some(label);
            cur_insts = Vec::new();
            continue;
        }
        if cur_label.is_none() {
            return Err(lx.err("instruction outside a block"));
        }
        // A terminator?
        if lx.eat_ident("br") {
            let target = lx.expect_ident()?;
            blocks.push((
                cur_label.take().unwrap(),
                std::mem::take(&mut cur_insts),
                SymTerm::Br(target),
            ));
            continue;
        }
        if lx.eat_ident("condbr") {
            let cond = parse_value(lx, names, &ctx)?;
            lx.expect(Tok::Comma)?;
            let t = lx.expect_ident()?;
            lx.expect(Tok::Comma)?;
            let e = lx.expect_ident()?;
            blocks.push((
                cur_label.take().unwrap(),
                std::mem::take(&mut cur_insts),
                SymTerm::CondBr(cond, t, e),
            ));
            continue;
        }
        if lx.eat_ident("ret") {
            let v = if matches!(
                lx.peek(),
                Some(Tok::Int(_)) | Some(Tok::Percent(_)) | Some(Tok::Global(_))
            ) || matches!(lx.peek(), Some(Tok::Ident(s)) if s == "null")
            {
                Some(parse_value(lx, names, &ctx)?)
            } else {
                None
            };
            blocks.push((
                cur_label.take().unwrap(),
                std::mem::take(&mut cur_insts),
                SymTerm::Ret(v),
            ));
            continue;
        }
        if lx.eat_ident("unreachable") {
            blocks.push((
                cur_label.take().unwrap(),
                std::mem::take(&mut cur_insts),
                SymTerm::Unreachable,
            ));
            continue;
        }
        // An instruction, with or without a result binding.
        let result_name = if let (Some(Tok::Percent(_)), Some(Tok::Eq)) = (lx.peek(), lx.peek2()) {
            let n = match lx.next() {
                Some(Tok::Percent(n)) => n,
                _ => unreachable!(),
            };
            lx.next(); // '='
            Some(n)
        } else {
            None
        };
        let id = f.fresh_inst_id();
        if let Some(n) = &result_name {
            ctx.results.insert(n.clone(), id);
        }
        let kind = parse_inst(lx, names, &ctx, result_name.as_deref())?;
        // Optional `!N` source-span suffix.
        let span = if lx.eat(&Tok::Bang) {
            match lx.next() {
                Some(Tok::Int(v)) if v >= 0 => v as u32,
                _ => return Err(lx.err("expected line number after `!`")),
            }
        } else {
            0
        };
        cur_insts.push(Inst::with_span(id, kind, span));
    }

    // Resolve labels.
    let label_ids: HashMap<&str, BlockId> = blocks
        .iter()
        .enumerate()
        .map(|(i, (l, _, _))| (l.as_str(), BlockId(i as u32)))
        .collect();
    let resolve = |l: &str, lx: &Lexer| {
        label_ids
            .get(l)
            .copied()
            .ok_or_else(|| lx.err(format!("unknown label `{l}`")))
    };
    for (label, insts, sym) in &blocks {
        let term = match sym {
            SymTerm::Br(t) => Terminator::Br(resolve(t, lx)?),
            SymTerm::CondBr(c, t, e) => Terminator::CondBr {
                cond: *c,
                then_bb: resolve(t, lx)?,
                else_bb: resolve(e, lx)?,
            },
            SymTerm::Ret(v) => Terminator::Ret(*v),
            SymTerm::Unreachable => Terminator::Unreachable,
        };
        f.blocks.push(Block {
            name: label.clone(),
            insts: insts.clone(),
            term,
        });
    }
    if f.blocks.is_empty() {
        return Err(lx.err("function has no blocks"));
    }
    Ok(f)
}

fn parse_value(lx: &mut Lexer, names: &Names, ctx: &FnCtx) -> Result<Value, ParseError> {
    match lx.next() {
        Some(Tok::Int(v)) => Ok(Value::Const(v)),
        Some(Tok::Ident(s)) if s == "null" => Ok(Value::Null),
        Some(Tok::Global(n)) => {
            if let Some(g) = names.globals.get(&n) {
                Ok(Value::Global(*g))
            } else if let Some(fid) = names.funcs.get(&n) {
                Ok(Value::Func(*fid))
            } else {
                Err(lx.err(format!("unknown global `@{n}`")))
            }
        }
        Some(Tok::Percent(n)) => {
            if let Some(p) = ctx.params.get(&n) {
                Ok(Value::Param(*p))
            } else if let Some(id) = ctx.results.get(&n) {
                Ok(Value::Inst(*id))
            } else {
                Err(lx.err(format!("unknown value `%{n}`")))
            }
        }
        got => Err(lx.err(format!("expected value, got {got:?}"))),
    }
}

fn parse_ord_opt(lx: &mut Lexer) -> Ordering {
    if let Some(Tok::Ident(s)) = lx.peek() {
        if let Some(o) = Ordering::from_keyword(s) {
            lx.next();
            return o;
        }
    }
    Ordering::NotAtomic
}

fn parse_vol_opt(lx: &mut Lexer) -> bool {
    lx.eat_ident("volatile")
}

fn parse_inst(
    lx: &mut Lexer,
    names: &Names,
    ctx: &FnCtx,
    result_name: Option<&str>,
) -> Result<InstKind, ParseError> {
    let mnemonic = lx.expect_ident()?;
    match mnemonic.as_str() {
        "alloca" => {
            let ty = parse_type(lx, names)?;
            Ok(InstKind::Alloca {
                ty,
                name: result_name.unwrap_or("tmp").to_string(),
            })
        }
        "load" => {
            let ty = parse_type(lx, names)?;
            lx.expect(Tok::Comma)?;
            let ptr = parse_value(lx, names, ctx)?;
            let ord = parse_ord_opt(lx);
            let volatile = parse_vol_opt(lx);
            Ok(InstKind::Load {
                ptr,
                ty,
                ord,
                volatile,
            })
        }
        "store" => {
            let ty = parse_type(lx, names)?;
            let val = parse_value(lx, names, ctx)?;
            lx.expect(Tok::Comma)?;
            let ptr = parse_value(lx, names, ctx)?;
            let ord = parse_ord_opt(lx);
            let volatile = parse_vol_opt(lx);
            Ok(InstKind::Store {
                ptr,
                val,
                ty,
                ord,
                volatile,
            })
        }
        "cmpxchg" => {
            let ty = parse_type(lx, names)?;
            let ptr = parse_value(lx, names, ctx)?;
            lx.expect(Tok::Comma)?;
            let expected = parse_value(lx, names, ctx)?;
            lx.expect(Tok::Comma)?;
            let new = parse_value(lx, names, ctx)?;
            let mut ord = parse_ord_opt(lx);
            if ord == Ordering::NotAtomic {
                ord = Ordering::SeqCst;
            }
            Ok(InstKind::Cmpxchg {
                ptr,
                expected,
                new,
                ty,
                ord,
            })
        }
        "rmw" => {
            let op_name = lx.expect_ident()?;
            let op = RmwOp::from_mnemonic(&op_name)
                .ok_or_else(|| lx.err(format!("unknown rmw op `{op_name}`")))?;
            let ty = parse_type(lx, names)?;
            let ptr = parse_value(lx, names, ctx)?;
            lx.expect(Tok::Comma)?;
            let val = parse_value(lx, names, ctx)?;
            let mut ord = parse_ord_opt(lx);
            if ord == Ordering::NotAtomic {
                ord = Ordering::SeqCst;
            }
            Ok(InstKind::Rmw {
                op,
                ptr,
                val,
                ty,
                ord,
            })
        }
        "fence" => {
            let mut ord = parse_ord_opt(lx);
            if ord == Ordering::NotAtomic {
                ord = Ordering::SeqCst;
            }
            Ok(InstKind::Fence { ord })
        }
        "gep" => {
            let base_ty = parse_type(lx, names)?;
            lx.expect(Tok::Comma)?;
            let base = parse_value(lx, names, ctx)?;
            let mut indices = Vec::new();
            while lx.eat(&Tok::Comma) {
                if let Some(Tok::Int(v)) = lx.peek() {
                    indices.push(GepIndex::Const(*v));
                    lx.next();
                } else {
                    indices.push(GepIndex::Dyn(parse_value(lx, names, ctx)?));
                }
            }
            Ok(InstKind::Gep {
                base,
                base_ty,
                indices,
            })
        }
        "cmp" => {
            let pred_name = lx.expect_ident()?;
            let pred = CmpPred::from_mnemonic(&pred_name)
                .ok_or_else(|| lx.err(format!("unknown predicate `{pred_name}`")))?;
            let lhs = parse_value(lx, names, ctx)?;
            lx.expect(Tok::Comma)?;
            let rhs = parse_value(lx, names, ctx)?;
            Ok(InstKind::Cmp { pred, lhs, rhs })
        }
        "cast" => {
            let value = parse_value(lx, names, ctx)?;
            if !lx.eat_ident("to") {
                return Err(lx.err("expected `to` in cast"));
            }
            let to = parse_type(lx, names)?;
            Ok(InstKind::Cast { value, to })
        }
        "call" => {
            let ret_ty = parse_type(lx, names)?;
            let callee_name = match lx.next() {
                Some(Tok::Global(n)) => n,
                got => return Err(lx.err(format!("expected callee, got {got:?}"))),
            };
            let callee = if let Some(fid) = names.funcs.get(&callee_name) {
                Callee::Func(*fid)
            } else if let Some(b) = Builtin::from_name(&callee_name) {
                Callee::Builtin(b)
            } else {
                return Err(lx.err(format!("unknown callee `@{callee_name}`")));
            };
            lx.expect(Tok::LParen)?;
            let mut args = Vec::new();
            if !lx.eat(&Tok::RParen) {
                loop {
                    args.push(parse_value(lx, names, ctx)?);
                    if lx.eat(&Tok::RParen) {
                        break;
                    }
                    lx.expect(Tok::Comma)?;
                }
            }
            Ok(InstKind::Call {
                callee,
                args,
                ret_ty,
            })
        }
        other => {
            if let Some(op) = BinOp::from_mnemonic(other) {
                let lhs = parse_value(lx, names, ctx)?;
                lx.expect(Tok::Comma)?;
                let rhs = parse_value(lx, names, ctx)?;
                Ok(InstKind::Bin { op, lhs, rhs })
            } else {
                Err(lx.err(format!("unknown instruction `{other}`")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;

    const MP: &str = r#"
    module "mp"
    global @flag: i32 = 0
    global @msg: i32 = 0
    fn @writer() : void {
    bb0:
      store i32 1, @msg
      store i32 1, @flag seq_cst
      ret
    }
    fn @reader() : i32 {
    loop:
      %v = load i32, @flag seq_cst
      %c = cmp eq %v, 0
      condbr %c, loop, done
    done:
      %m = load i32, @msg
      ret %m
    }
    "#;

    #[test]
    fn parses_message_passing() {
        let m = parse_module(MP).unwrap();
        assert_eq!(m.name, "mp");
        assert_eq!(m.globals.len(), 2);
        assert_eq!(m.funcs.len(), 2);
        let reader = &m.funcs[1];
        assert_eq!(reader.blocks.len(), 2);
        assert_eq!(
            reader.blocks[0].term.successors(),
            vec![BlockId(0), BlockId(1)]
        );
        // The seq_cst ordering survived.
        let (_, first) = reader.insts().next().unwrap();
        assert_eq!(first.kind.ordering(), Some(Ordering::SeqCst));
    }

    #[test]
    fn roundtrips_through_printer() {
        let m = parse_module(MP).unwrap();
        let text = print_module(&m);
        let m2 = parse_module(&text).unwrap();
        assert_eq!(m2.funcs.len(), m.funcs.len());
        assert_eq!(m2.globals, m.globals);
        assert_eq!(m2.funcs[0].blocks.len(), m.funcs[0].blocks.len());
        assert_eq!(m2.inst_count(), m.inst_count());
        // Printing again is a fixpoint.
        assert_eq!(print_module(&m2), text);
    }

    #[test]
    fn parses_structs_and_geps() {
        let src = r#"
        struct %Node { i64, i64, ptr %Node }
        global @head: ptr %Node = 0
        fn @find(%n: ptr %Node) : i64 {
        bb0:
          %a = gep %Node, %n, 0, 1
          %v = load i64, %a
          ret %v
        }
        "#;
        let m = parse_module(src).unwrap();
        assert_eq!(m.structs.len(), 1);
        assert_eq!(m.structs[0].fields.len(), 3);
        let f = &m.funcs[0];
        match &f.blocks[0].insts[0].kind {
            InstKind::Gep {
                base_ty, indices, ..
            } => {
                assert_eq!(*base_ty, Type::Struct(StructId(0)));
                assert_eq!(indices.len(), 2);
            }
            other => panic!("expected gep, got {other:?}"),
        }
    }

    #[test]
    fn parses_cmpxchg_rmw_fence_call() {
        let src = r#"
        global @lock: i32 = 0
        fn @acquire() : void {
        spin:
          %old = cmpxchg i32 @lock, 0, 1 seq_cst
          %c = cmp ne %old, 0
          condbr %c, spin, done
        done:
          fence seq_cst
          %x = rmw add i32 @lock, 0 acq_rel
          call void @pause()
          ret
        }
        "#;
        let m = parse_module(src).unwrap();
        let f = &m.funcs[0];
        assert!(matches!(
            f.blocks[0].insts[0].kind,
            InstKind::Cmpxchg {
                ord: Ordering::SeqCst,
                ..
            }
        ));
        assert!(matches!(
            f.blocks[1].insts[0].kind,
            InstKind::Fence {
                ord: Ordering::SeqCst
            }
        ));
        assert!(matches!(
            f.blocks[1].insts[1].kind,
            InstKind::Rmw {
                op: RmwOp::Add,
                ord: Ordering::AcqRel,
                ..
            }
        ));
        assert!(matches!(
            f.blocks[1].insts[2].kind,
            InstKind::Call {
                callee: Callee::Builtin(Builtin::Pause),
                ..
            }
        ));
    }

    #[test]
    fn parses_array_global_with_init() {
        let src = r#"
        global @tbl: [4 x i32] = [1, 2, 3, 4]
        fn @noop() : void {
        bb0:
          ret
        }
        "#;
        let m = parse_module(src).unwrap();
        assert_eq!(m.globals[0].init, vec![1, 2, 3, 4]);
        assert_eq!(m.globals[0].ty, Type::array_of(Type::I32, 4));
    }

    #[test]
    fn zero_init_is_expanded_to_slot_count() {
        let src = r#"
        global @tbl: [8 x i64] = 0
        fn @noop() : void {
        bb0:
          ret
        }
        "#;
        let m = parse_module(src).unwrap();
        assert_eq!(m.globals[0].init.len(), 8);
    }

    #[test]
    fn unknown_label_is_an_error() {
        let src = r#"
        fn @f() : void {
        bb0:
          br nowhere
        }
        "#;
        let err = parse_module(src).unwrap_err();
        assert!(err.msg.contains("unknown label"));
    }

    #[test]
    fn unknown_value_is_an_error() {
        let src = r#"
        fn @f() : void {
        bb0:
          %x = add %y, 1
          ret
        }
        "#;
        assert!(parse_module(src).is_err());
    }

    #[test]
    fn missing_terminator_is_an_error() {
        let src = r#"
        fn @f() : void {
        bb0:
          %x = add 1, 1
        }
        "#;
        let err = parse_module(src).unwrap_err();
        assert!(err.msg.contains("terminator"));
    }

    #[test]
    fn spawn_takes_function_ref() {
        let src = r#"
        fn @worker(%arg: i64) : void {
        bb0:
          ret
        }
        fn @main() : void {
        bb0:
          %tid = call i64 @spawn(@worker, 0)
          call void @join(%tid)
          ret
        }
        "#;
        let m = parse_module(src).unwrap();
        let main = &m.funcs[1];
        match &main.blocks[0].insts[0].kind {
            InstKind::Call { callee, args, .. } => {
                assert_eq!(*callee, Callee::Builtin(Builtin::Spawn));
                assert_eq!(args[0], Value::Func(FuncId(0)));
            }
            other => panic!("expected call, got {other:?}"),
        }
    }
}
