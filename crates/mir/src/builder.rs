//! Programmatic construction of functions.

use crate::func::{Block, BlockId, Function, InstId};
use crate::inst::{
    BinOp, Builtin, Callee, CmpPred, GepIndex, Inst, InstKind, Ordering, RmwOp, Terminator,
};
use crate::types::Type;
use crate::value::Value;

/// A cursor-style builder appending instructions to a current block.
///
/// # Examples
///
/// Build the paper's Figure 1 writer (`msg = 1; flag = 1;`):
///
/// ```
/// use atomig_mir::{FunctionBuilder, Type, Value, Module, GlobalDef};
///
/// let mut m = Module::new("mp");
/// let msg = m.add_global(GlobalDef { name: "msg".into(), ty: Type::I32, init: vec![0] });
/// let flag = m.add_global(GlobalDef { name: "flag".into(), ty: Type::I32, init: vec![0] });
/// let mut b = FunctionBuilder::new("writer", vec![], Type::Void);
/// b.store(Type::I32, Value::Global(msg), Value::Const(1));
/// b.store(Type::I32, Value::Global(flag), Value::Const(1));
/// b.ret(None);
/// m.add_func(b.finish());
/// assert_eq!(m.funcs[0].inst_count(), 2);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
    cur_line: u32,
}

impl FunctionBuilder {
    /// Starts building a function with an empty entry block.
    pub fn new(name: impl Into<String>, params: Vec<(String, Type)>, ret: Type) -> Self {
        let func = Function::new(name, params, ret);
        FunctionBuilder {
            func,
            current: BlockId(0),
            cur_line: 0,
        }
    }

    /// Sets the source line stamped onto subsequently pushed instructions
    /// (`0` = unknown). Lowering calls this at each statement boundary.
    pub fn set_line(&mut self, line: u32) {
        self.cur_line = line;
    }

    /// The block instructions are currently appended to.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Creates a new (empty, unterminated) block and returns its id without
    /// switching to it.
    pub fn new_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(Block::new(name));
        id
    }

    /// Switches the insertion point to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    /// Appends an instruction of `kind`, returning its result value.
    pub fn push(&mut self, kind: InstKind) -> Value {
        Value::Inst(self.push_id(kind))
    }

    /// Appends an instruction, returning the raw [`InstId`].
    pub fn push_id(&mut self, kind: InstKind) -> InstId {
        let id = self.func.fresh_inst_id();
        let span = self.cur_line;
        self.func
            .block_mut(self.current)
            .insts
            .push(Inst::with_span(id, kind, span));
        id
    }

    /// `alloca ty` — a named stack slot.
    pub fn alloca(&mut self, ty: Type, name: impl Into<String>) -> Value {
        self.push(InstKind::Alloca {
            ty,
            name: name.into(),
        })
    }

    /// A plain (non-atomic, non-volatile) load.
    pub fn load(&mut self, ty: Type, ptr: Value) -> Value {
        self.load_ord(ty, ptr, Ordering::NotAtomic, false)
    }

    /// A load with explicit ordering and volatility.
    pub fn load_ord(&mut self, ty: Type, ptr: Value, ord: Ordering, volatile: bool) -> Value {
        self.push(InstKind::Load {
            ptr,
            ty,
            ord,
            volatile,
        })
    }

    /// A plain (non-atomic, non-volatile) store.
    pub fn store(&mut self, ty: Type, ptr: Value, val: Value) {
        self.store_ord(ty, ptr, val, Ordering::NotAtomic, false);
    }

    /// A store with explicit ordering and volatility.
    pub fn store_ord(&mut self, ty: Type, ptr: Value, val: Value, ord: Ordering, volatile: bool) {
        self.push(InstKind::Store {
            ptr,
            val,
            ty,
            ord,
            volatile,
        });
    }

    /// `cmpxchg` returning the old value.
    pub fn cmpxchg(
        &mut self,
        ty: Type,
        ptr: Value,
        expected: Value,
        new: Value,
        ord: Ordering,
    ) -> Value {
        self.push(InstKind::Cmpxchg {
            ptr,
            expected,
            new,
            ty,
            ord,
        })
    }

    /// `atomicrmw` returning the old value.
    pub fn rmw(&mut self, op: RmwOp, ty: Type, ptr: Value, val: Value, ord: Ordering) -> Value {
        self.push(InstKind::Rmw {
            op,
            ptr,
            val,
            ty,
            ord,
        })
    }

    /// A stand-alone fence.
    pub fn fence(&mut self, ord: Ordering) {
        self.push(InstKind::Fence { ord });
    }

    /// A `gep` with arbitrary indices.
    pub fn gep(&mut self, base_ty: Type, base: Value, indices: Vec<GepIndex>) -> Value {
        self.push(InstKind::Gep {
            base,
            base_ty,
            indices,
        })
    }

    /// `&base[0].field` — the common struct-field address pattern.
    pub fn field_addr(&mut self, struct_ty: Type, base: Value, field: u32) -> Value {
        self.gep(
            struct_ty,
            base,
            vec![GepIndex::Const(0), GepIndex::Const(field as i64)],
        )
    }

    /// Binary arithmetic.
    pub fn bin(&mut self, op: BinOp, lhs: Value, rhs: Value) -> Value {
        self.push(InstKind::Bin { op, lhs, rhs })
    }

    /// Comparison.
    pub fn cmp(&mut self, pred: CmpPred, lhs: Value, rhs: Value) -> Value {
        self.push(InstKind::Cmp { pred, lhs, rhs })
    }

    /// Cast.
    pub fn cast(&mut self, value: Value, to: Type) -> Value {
        self.push(InstKind::Cast { value, to })
    }

    /// A direct call.
    pub fn call(&mut self, callee: Callee, args: Vec<Value>, ret_ty: Type) -> Value {
        self.push(InstKind::Call {
            callee,
            args,
            ret_ty,
        })
    }

    /// A builtin call.
    pub fn call_builtin(&mut self, b: Builtin, args: Vec<Value>, ret_ty: Type) -> Value {
        self.call(Callee::Builtin(b), args, ret_ty)
    }

    /// Terminates the current block with an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.func.block_mut(self.current).term = Terminator::Br(target);
    }

    /// Terminates the current block with a conditional branch.
    pub fn cond_br(&mut self, cond: Value, then_bb: BlockId, else_bb: BlockId) {
        self.func.block_mut(self.current).term = Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        };
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, val: Option<Value>) {
        self.func.block_mut(self.current).term = Terminator::Ret(val);
    }

    /// Marks the current block unreachable.
    pub fn unreachable(&mut self) {
        self.func.block_mut(self.current).term = Terminator::Unreachable;
    }

    /// Whether the current block already has a real terminator.
    pub fn is_terminated(&self) -> bool {
        !matches!(self.func.block(self.current).term, Terminator::Unreachable)
    }

    /// Finishes and returns the function.
    pub fn finish(self) -> Function {
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spinloop_shape() {
        // while (flag != 1) ;  with flag as param pointer
        let mut b = FunctionBuilder::new(
            "spin",
            vec![("flag".into(), Type::ptr_to(Type::I32))],
            Type::Void,
        );
        let header = b.new_block("loop");
        let exit = b.new_block("exit");
        b.br(header);
        b.switch_to(header);
        let v = b.load(Type::I32, Value::Param(0));
        let c = b.cmp(CmpPred::Ne, v, Value::Const(1));
        b.cond_br(c, header, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.inst_count(), 2);
        assert_eq!(
            f.block(BlockId(1)).term.successors(),
            vec![BlockId(1), BlockId(2)]
        );
    }

    #[test]
    fn terminated_flag() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        assert!(!b.is_terminated());
        b.ret(None);
        assert!(b.is_terminated());
    }

    #[test]
    fn field_addr_emits_two_const_indices() {
        let mut b =
            FunctionBuilder::new("f", vec![("p".into(), Type::ptr_to(Type::I64))], Type::Void);
        let addr = b.field_addr(Type::I64, Value::Param(0), 2);
        b.ret(None);
        let f = b.finish();
        let id = addr.as_inst().unwrap();
        let idx = f.inst_index();
        match idx[&id] {
            InstKind::Gep { indices, .. } => {
                assert_eq!(indices.len(), 2);
                assert_eq!(indices[1].as_const(), Some(2));
            }
            other => panic!("expected gep, got {other:?}"),
        }
    }
}
