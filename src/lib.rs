//! # atomig-suite
//!
//! Umbrella crate for the AtoMig reproduction: re-exports every workspace
//! crate and anchors the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`).
//!
//! Start with [`atomig_core`] for the paper's contribution, or run
//! `cargo run --example quickstart`.

pub use atomig_analysis as analysis;
pub use atomig_core as core;
pub use atomig_frontc as frontc;
pub use atomig_mir as mir;
pub use atomig_wmm as wmm;
pub use atomig_workloads as workloads;
